"""Fault tolerance for the batch/sweep engine.

A multi-hour design-space sweep must not lose everything to one worker
exception, one OOM-killed process, or one hung task.  This module is
the resilience layer the parallel engine
(:mod:`repro.core.parallel`) executes under:

* :class:`ResiliencePolicy` -- what to do when a task fails:
  ``on_error="raise"`` fails fast (the pre-existing behaviour),
  ``"skip"`` records a :class:`TaskFailure` in the task's result slot
  and keeps going, ``"retry"`` re-runs the task with bounded
  exponential backoff before degrading to a recorded failure.  A
  per-task wall-clock ``timeout_s`` cancels hung tasks (parallel runs
  only -- an in-process task cannot be preempted).
* :class:`Journal` -- an append-only JSONL checkpoint of completed
  tasks keyed by content hash (:func:`task_key`, the same
  canonical-JSON/sha256 scheme as
  :func:`repro.core.solvecache.solve_key`).  Records are written
  atomically at task boundaries, so an interrupted ``table3``,
  ``run_study``, or sensitivity sweep resumed against the same journal
  re-executes only the unfinished tasks.
* :class:`FaultPlan` -- a deterministic fault-injection harness for
  tests and smoke jobs: raise/delay/kill the Nth task of a named
  stage, for the first ``trips`` attempts only, so a retried task
  succeeds deterministically.

Failed tasks never poison the pool: the engine captures the exception,
applies the policy, and accounts ``retries`` / ``timeouts`` /
``tasks_failed`` / ``pool_rebuilds`` into
:class:`~repro.core.optimizer.SweepStats` and the ``resilience.*``
metrics of an :class:`~repro.obs.Obs`.
"""

from __future__ import annotations

import base64
import dataclasses
import hashlib
import json
import os
import pickle
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path

#: Journal file format / key-scheme version.  Bump whenever the record
#: layout or the task_key canonicalization changes; mismatched lines
#: are skipped on load rather than served.
JOURNAL_VERSION = "repro-journal-v1"

#: The error policies a :class:`ResiliencePolicy` accepts.
ON_ERROR_POLICIES = ("raise", "skip", "retry")


class FaultInjected(RuntimeError):
    """Raised by a :class:`FaultPlan` trip (or a parent-side kill)."""


class TaskTimeout(RuntimeError):
    """A task exceeded its wall-clock budget under ``on_error="raise"``."""


@dataclass(frozen=True)
class TaskFailure:
    """One task's terminal failure, recorded instead of a result.

    In ``skip`` mode (and after ``retry`` exhausts its attempts) the
    failed task's slot in the result list holds one of these, and the
    sweep entry points collect them into their ``.failed`` lists.
    """

    index: int  #: payload index within the map
    stage: str  #: pipeline stage name (e.g. ``study.cell``)
    error_type: str  #: exception class name (``"TaskTimeout"`` for hangs)
    message: str
    attempts: int  #: total attempts made, including the first

    @property
    def timed_out(self) -> bool:
        return self.error_type == "TaskTimeout"

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return (
            f"{self.stage}[{self.index}] failed after {self.attempts} "
            f"attempt(s): {self.error_type}: {self.message}"
        )


# --------------------------------------------------------------------- #
# Deterministic fault injection


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: act on the Nth task of a named stage.

    ``trips`` bounds how many *attempts* of that task the fault fires
    on: with ``trips=1`` the first attempt fails and every retry
    succeeds, deterministically, in whichever process runs the task.
    """

    stage: str
    index: int
    action: str  #: ``"raise"`` | ``"delay"`` | ``"kill"``
    delay_s: float = 0.0
    trips: int = 1

    def __post_init__(self) -> None:
        if self.action not in ("raise", "delay", "kill"):
            raise ValueError(f"unknown fault action {self.action!r}")


@dataclass(frozen=True)
class FaultPlan:
    """A picklable bundle of :class:`FaultSpec` entries.

    Pure data with no shared state: trip bookkeeping derives from the
    attempt number the engine passes in, so the plan behaves
    identically in the parent and in any worker process.
    """

    faults: tuple[FaultSpec, ...] = ()

    def fire(self, stage: str, index: int, attempt: int) -> None:
        """Inject the planned fault for (stage, index, attempt), if any.

        ``kill`` hard-exits a *worker* process (exercising
        ``BrokenProcessPool`` recovery); in the parent process it
        degrades to a raised :class:`FaultInjected` so the harness can
        never take the whole run down with it.
        """
        import multiprocessing
        import time

        for f in self.faults:
            if f.stage != stage or f.index != index or attempt > f.trips:
                continue
            if f.action == "delay":
                time.sleep(f.delay_s)
            elif f.action == "kill":
                if multiprocessing.parent_process() is not None:
                    os._exit(1)
                raise FaultInjected(
                    f"injected kill at {stage}[{index}] attempt {attempt}"
                )
            else:
                raise FaultInjected(
                    f"injected fault at {stage}[{index}] attempt {attempt}"
                )


# --------------------------------------------------------------------- #
# Content-hash task keys (the solve_key scheme, generalized)


def _jsonable(value):
    """Canonical JSON-encodable view of a task description.

    Dataclasses become field dicts, enums their values, tuples lists;
    anything else falls back to ``repr``.  Mirrors the spec/target
    serialization of :func:`repro.core.solvecache.solve_key` so keys
    are stable across sessions and processes.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return repr(value)


def task_key(stage: str, description) -> str:
    """Stable content hash of one task: sha256 of canonical JSON.

    Numeric leaves are normalized (``32`` and ``32.0`` hash equally),
    exactly as the persistent solve cache hashes its requests.  The
    model's ``CACHE_VERSION`` is folded in, so a journal written by an
    older model never satisfies a resume after the numbers changed.
    """
    from repro.core.solvecache import CACHE_VERSION, _normalize_numbers

    payload = _normalize_numbers({
        "version": JOURNAL_VERSION,
        "model": CACHE_VERSION,
        "stage": stage,
        "task": _jsonable(description),
    })
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------- #
# Checkpoint journal


class Journal:
    """Append-only JSONL checkpoint of completed task results.

    One line per completed task: ``{"v": ..., "key": ..., "stage": ...,
    "data": <base64 pickle>}``, written in a single ``write`` + flush at
    the task boundary, so a killed run leaves at worst one torn final
    line -- which the loader skips, along with any version-mismatched
    or hand-mangled line, rather than erroring.  Resuming against the
    same journal path restores every recorded result without
    re-executing its task.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self._records: dict[str, str] = {}
        self._stages: dict[str, str] = {}
        self._fh = None
        self._load()

    def _load(self) -> None:
        try:
            text = self.path.read_text()
        except OSError:
            return
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError:
                continue  # torn tail line from a killed writer
            if (
                not isinstance(rec, dict)
                or rec.get("v") != JOURNAL_VERSION
                or "key" not in rec
                or "data" not in rec
            ):
                continue
            self._records[rec["key"]] = rec["data"]
            self._stages[rec["key"]] = rec.get("stage", "")

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def stages(self) -> dict[str, int]:
        """Completed-entry counts per stage (for resume reporting)."""
        counts: dict[str, int] = {}
        for stage in self._stages.values():
            counts[stage] = counts.get(stage, 0) + 1
        return counts

    def result(self, key: str):
        """The recorded result for ``key`` (raises KeyError if absent)."""
        return pickle.loads(base64.b64decode(self._records[key]))

    def record(self, key: str, stage: str, result) -> None:
        """Append one completed task, atomically at the task boundary."""
        data = base64.b64encode(
            pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii")
        line = json.dumps(
            {"v": JOURNAL_VERSION, "key": key, "stage": stage, "data": data},
            separators=(",", ":"),
        )
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a", encoding="utf-8")
        self._fh.write(line + "\n")
        self._fh.flush()
        self._records[key] = data
        self._stages[key] = stage

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


# --------------------------------------------------------------------- #
# The policy


@dataclass(frozen=True)
class ResiliencePolicy:
    """How the parallel engine treats task failures.

    ``on_error`` selects the terminal behaviour; ``retry`` re-runs a
    failed task up to ``max_retries`` times with exponential backoff
    (``backoff_s * backoff_factor**(attempt-1)`` seconds) before
    recording a :class:`TaskFailure` like ``skip`` does.  ``timeout_s``
    bounds each task's wall clock in parallel runs: an overdue task is
    cancelled by rebuilding the worker pool (in-flight siblings are
    re-queued without being charged an attempt).  ``journal``
    checkpoints completed tasks; ``fault_plan`` injects deterministic
    test faults.

    The policy itself never crosses a process boundary -- only the
    (pure-data) fault plan ships with each task -- so journals with
    open file handles are safe to carry here.
    """

    on_error: str = "raise"
    max_retries: int = 2
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    timeout_s: float | None = None
    journal: Journal | None = field(default=None, compare=False)
    fault_plan: FaultPlan | None = None

    def __post_init__(self) -> None:
        if self.on_error not in ON_ERROR_POLICIES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_POLICIES}, "
                f"got {self.on_error!r}"
            )
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")

    @property
    def retries_allowed(self) -> int:
        """Extra attempts after the first (0 unless ``on_error="retry"``)."""
        return self.max_retries if self.on_error == "retry" else 0

    def backoff(self, attempt: int) -> float:
        """Sleep before re-running a task that failed ``attempt`` times."""
        return self.backoff_s * self.backoff_factor ** (attempt - 1)
