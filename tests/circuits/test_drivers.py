"""Unit tests for driver chains."""

import pytest

from repro.circuits.drivers import WireLoad, build_chain
from repro.tech.devices import device

HP32 = device("hp", 32)
F32 = 32e-9


class TestBuildChain:
    def test_bigger_load_slower(self):
        small = build_chain(HP32, F32, c_load=10e-15)
        big = build_chain(HP32, F32, c_load=1000e-15)
        assert big.delay > small.delay

    def test_bigger_load_more_stages(self):
        small = build_chain(HP32, F32, c_load=5e-15)
        big = build_chain(HP32, F32, c_load=5e-12)
        assert big.num_stages > small.num_stages

    def test_wire_resistance_adds_delay(self):
        bare = build_chain(HP32, F32, c_load=50e-15)
        wired = build_chain(
            HP32, F32, c_load=50e-15, wire=WireLoad(5e3, 50e-15)
        )
        assert wired.delay > bare.delay

    def test_energy_includes_wire(self):
        bare = build_chain(HP32, F32, c_load=50e-15)
        wired = build_chain(
            HP32, F32, c_load=50e-15, wire=WireLoad(0.0, 100e-15)
        )
        assert wired.energy > bare.energy

    def test_voltage_swing_scales_energy(self):
        base = build_chain(HP32, F32, c_load=100e-15)
        boosted = build_chain(
            HP32, F32, c_load=100e-15, voltage_swing=2 * HP32.vdd
        )
        assert boosted.energy == pytest.approx(4 * base.energy, rel=0.01)

    def test_pitch_constraint_grows_area(self):
        free = build_chain(HP32, F32, c_load=1e-12)
        pitched = build_chain(HP32, F32, c_load=1e-12, pitch=3 * F32)
        assert pitched.area > free.area

    def test_nand_first_gate(self):
        chain = build_chain(HP32, F32, c_load=100e-15, first_gate_inputs=3)
        assert chain.num_stages >= 1
        assert chain.c_in > 0

    def test_leakage_positive(self):
        assert build_chain(HP32, F32, c_load=1e-13).leakage > 0

    def test_ramp_out_positive(self):
        assert build_chain(HP32, F32, c_load=1e-13).ramp_out > 0
