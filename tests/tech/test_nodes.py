"""Unit tests for the technology node registry and interpolation."""

import pytest

from repro.tech.cells import CellTech
from repro.tech.nodes import technology


class TestRegistry:
    @pytest.mark.parametrize("node", [90, 65, 45, 32])
    def test_exact_nodes(self, node):
        t = technology(node)
        assert t.node_nm == node
        assert t.feature_size == pytest.approx(node * 1e-9)
        assert set(t.devices) == {"hp", "hp-long-channel", "lstp", "lop"}

    def test_caching(self):
        assert technology(32) is technology(32)

    def test_out_of_range(self):
        with pytest.raises(ValueError, match="outside modeled ITRS range"):
            technology(22)
        with pytest.raises(ValueError, match="outside modeled ITRS range"):
            technology(130)

    def test_unknown_device_lookup(self, tech32):
        with pytest.raises(ValueError, match="unknown device type"):
            tech32.device("turbo")


class TestInterpolation:
    def test_78nm_between_90_and_65(self):
        t78 = technology(78)
        for dtype in ("hp", "lstp"):
            assert (
                technology(65).device(dtype).fo4
                < t78.device(dtype).fo4
                < technology(90).device(dtype).fo4
            )

    def test_interpolated_wires(self):
        assert technology(78).semi_global.pitch == pytest.approx(4 * 78e-9)

    def test_float_exact_node(self):
        assert technology(32.0).node_nm == 32.0


class TestCellAndWireSelection:
    def test_bitline_wire_tungsten_for_comm(self, tech32):
        assert tech32.bitline_wire(CellTech.COMM_DRAM).name == "local-tungsten"
        assert tech32.bitline_wire(CellTech.SRAM).name == "local"
        assert tech32.bitline_wire(CellTech.LP_DRAM).name == "local"

    def test_cell_builder_uses_periph_vdd(self, tech32):
        c = tech32.cell(CellTech.SRAM, "hp-long-channel")
        assert c.vdd_cell == pytest.approx(tech32.device("hp-long-channel").vdd)


class TestBoundedInterpolationCache:
    """Dense fractional-node sweeps must not pin unbounded Technology
    objects in memory (a cachedb build touches hundreds of nodes)."""

    def test_memory_resident_entries_stay_capped_over_dense_sweep(self):
        from repro.tech.nodes import (
            _INTERPOLATED_CACHE_SIZE,
            _interpolated_node,
        )

        _interpolated_node.cache_clear()
        for i in range(1000):
            technology(33.0 + (i % 997) * 56.0 / 997)
        info = _interpolated_node.cache_info()
        assert info.currsize <= _INTERPOLATED_CACHE_SIZE
        assert info.maxsize == _INTERPOLATED_CACHE_SIZE

    def test_exact_nodes_stay_unbounded_and_interned(self):
        from repro.tech.nodes import _exact_node

        assert _exact_node.cache_info().maxsize is None
        assert technology(32) is technology(32.0)

    def test_cached_fractional_node_is_interned(self):
        assert technology(78.0) is technology(78.0)
