"""Array organization: subarrays, mats, H-trees, banks, main-memory chips."""

from repro.array.htree import HTree, design_htree
from repro.array.mainmem import (
    MainMemoryEnergies,
    MainMemorySpec,
    MainMemoryTiming,
    derive_energies,
    derive_timing,
)
from repro.array.mat import Mat, mats_in_bank
from repro.array.organization import (
    ArrayMetrics,
    ArraySpec,
    EvalCache,
    InfeasibleOrganization,
    OrgGeometry,
    OrgParams,
    build_organization,
    derive_geometry,
    enumerate_orgs,
    prefilter_org,
)
from repro.array.stacking import StackedBank, stacking_sweep
from repro.array.subarray import InfeasibleSubarray, Subarray

__all__ = [
    "ArrayMetrics",
    "ArraySpec",
    "EvalCache",
    "HTree",
    "InfeasibleOrganization",
    "InfeasibleSubarray",
    "OrgGeometry",
    "MainMemoryEnergies",
    "MainMemorySpec",
    "MainMemoryTiming",
    "Mat",
    "OrgParams",
    "StackedBank",
    "Subarray",
    "build_organization",
    "derive_energies",
    "derive_geometry",
    "derive_timing",
    "design_htree",
    "enumerate_orgs",
    "mats_in_bank",
    "prefilter_org",
    "stacking_sweep",
]
