"""DRAM operational models: commands, page policies, interfaces."""

from repro.dram.interface import (
    InterfaceKind,
    LineMapping,
    MainMemoryLikeInterface,
    SramLikeInterface,
    interleaving_speedup,
    main_memory_like,
    page_hit_ratio,
    sram_like,
)
from repro.dram.operations import AccessResult, BankState, Command, DramBank
from repro.dram.page_policy import (
    ClosedPagePolicy,
    OpenPagePolicy,
    PagePolicy,
    crossover_hit_ratio,
    expected_access_latency,
)

__all__ = [
    "AccessResult",
    "BankState",
    "ClosedPagePolicy",
    "Command",
    "DramBank",
    "InterfaceKind",
    "LineMapping",
    "MainMemoryLikeInterface",
    "OpenPagePolicy",
    "PagePolicy",
    "SramLikeInterface",
    "crossover_hit_ratio",
    "expected_access_latency",
    "interleaving_speedup",
    "main_memory_like",
    "page_hit_ratio",
    "sram_like",
]
