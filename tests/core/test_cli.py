"""Tests for the command-line interface."""

import pytest

from repro.cli import main, parse_size


class TestParseSize:
    def test_suffixes(self):
        assert parse_size("32K") == 32 << 10
        assert parse_size("2M") == 2 << 20
        assert parse_size("1G") == 1 << 30
        assert parse_size("1.5M") == int(1.5 * (1 << 20))

    def test_raw_integers(self):
        assert parse_size("4096") == 4096

    def test_lowercase(self):
        assert parse_size("64k") == 64 << 10

    def test_invalid(self):
        with pytest.raises(ValueError):
            parse_size("M")
        with pytest.raises(ValueError):
            parse_size("abc")


class TestCommands:
    def test_cache(self, capsys):
        rc = main(["cache", "--capacity", "256K", "--assoc", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "access time" in out
        assert "leakage power" in out

    def test_plain_ram(self, capsys):
        rc = main(["cache", "--capacity", "256K", "--assoc", "0"])
        assert rc == 0

    def test_cache_lp_dram_sequential(self, capsys):
        rc = main([
            "cache", "--capacity", "1M", "--tech", "lp-dram",
            "--sequential", "--optimize", "energy-delay",
        ])
        assert rc == 0
        assert "lp-dram" in capsys.readouterr().out

    def test_main_memory(self, capsys):
        rc = main(["main-memory", "--capacity", "1G", "--node", "78"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tRCD" in out and "refresh power" in out

    def test_invalid_spec_returns_error_code(self, capsys):
        rc = main(["cache", "--capacity", "5", "--assoc", "3"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_validate_ddr3(self, capsys):
        rc = main(["validate-ddr3"])
        assert rc == 0
        assert "mean |error|" in capsys.readouterr().out
