"""Tests for the low-swing differential wire extension."""

import pytest

from repro.circuits.repeaters import optimal_repeated_wire
from repro.tech.nodes import technology
from repro.tech.wires import LowSwingWire, global_wire, low_swing_wire

TECH = technology(32)
VDD = TECH.device("hp").vdd


class TestLowSwing:
    def test_energy_saving_substantial(self):
        ls = low_swing_wire(32, vdd=VDD)
        assert ls.energy_saving_vs_full_swing(5e-3) > 0.5

    def test_energy_linear_in_swing(self):
        small = LowSwingWire(global_wire(32), swing=0.05, vdd=VDD)
        large = LowSwingWire(global_wire(32), swing=0.2, vdd=VDD)
        length = 3e-3
        # Receiver energy is a fixed offset; the wire term scales 4x.
        wire_small = small.energy(length) - small.RECEIVER_ENERGY
        wire_large = large.energy(length) - large.RECEIVER_ENERGY
        assert wire_large == pytest.approx(4 * wire_small, rel=0.01)

    def test_delay_quadratic_in_length(self):
        ls = low_swing_wire(32, vdd=VDD)
        d1 = ls.delay(1e-3) - ls.RECEIVER_DELAY
        d2 = ls.delay(2e-3) - ls.RECEIVER_DELAY
        assert d2 == pytest.approx(4 * d1, rel=0.01)

    def test_slower_than_repeated_wire_at_length(self):
        """The classic tradeoff: low-swing wins energy, repeated wins
        delay, increasingly so with distance."""
        ls = low_swing_wire(32, vdd=VDD)
        rep = optimal_repeated_wire(TECH.device("hp"), TECH.global_,
                                    TECH.feature_size)
        length = 8e-3
        assert ls.delay(length) > rep.delay(length)
        assert ls.energy(length) < rep.energy_per_m * length

    def test_short_links_competitive(self):
        """Below the crossover the unrepeated low-swing link is not much
        slower than the repeated wire."""
        ls = low_swing_wire(32, vdd=VDD)
        rep = optimal_repeated_wire(TECH.device("hp"), TECH.global_,
                                    TECH.feature_size)
        length = 0.5e-3
        assert ls.delay(length) < rep.delay(length) + 0.5e-9
