"""Validation tests: the model must land in the paper's error bands."""

import pytest

from repro.validation.compare import (
    percent_error,
    validate_ddr3,
    validate_sram_cache,
)
from repro.validation.targets import DDR3_TARGET, SPARC_L2, XEON_L3


@pytest.fixture(scope="module")
def ddr3():
    return validate_ddr3()


class TestDdr3Validation:
    """Paper Table 2: CACTI-D achieved ~16 % mean |error|; this
    reproduction must stay in the same quality band."""

    def test_mean_error_band(self, ddr3):
        assert ddr3.mean_abs_error < 0.30

    def test_timing_errors_tight(self, ddr3):
        for key in ("t_rcd", "t_cas", "t_rc"):
            assert abs(ddr3.errors[key]) < 0.25, key

    def test_area_efficiency_close(self, ddr3):
        assert abs(ddr3.errors["area_efficiency"]) < 0.15

    def test_energy_errors_match_paper_sign(self, ddr3):
        """CACTI-D underestimated the Micron energies (Table 2); the same
        systematic bias is expected here."""
        assert ddr3.errors["e_activate"] < 0
        assert ddr3.errors["e_read"] < 0
        assert ddr3.errors["e_write"] < 0

    def test_refresh_power_band(self, ddr3):
        assert abs(ddr3.errors["p_refresh"]) < 0.5

    def test_report_renders(self, ddr3):
        text = ddr3.report()
        assert "tRCD" in text and "Paper err" in text
        assert "mean |error|" in text


class TestSramValidation:
    @pytest.fixture(scope="class")
    def sparc(self):
        return validate_sram_cache(SPARC_L2)

    def test_solution_cloud_nonempty(self, sparc):
        assert len(sparc.solutions) >= 4
        assert len(sparc.target_bubbles) == 1

    def test_solutions_span_tradeoffs(self, sparc):
        times = [b.access_time for b in sparc.solutions]
        assert max(times) > min(times)

    def test_sparc_mean_error_band(self, sparc):
        """The paper quotes ~20 % for the best-access-time solution."""
        assert sparc.mean_abs_error() < 0.45

    def test_area_within_band(self, sparc):
        best = min(sparc.solutions, key=lambda b: b.access_time)
        assert abs(percent_error(best.area, SPARC_L2.area)) < 0.35

    @pytest.mark.slow
    def test_xeon_runs(self):
        from repro.core.config import OptimizationTarget

        sweep = (
            OptimizationTarget(max_area_fraction=0.3,
                               max_acctime_fraction=0.05),
            OptimizationTarget(max_area_fraction=0.6,
                               max_acctime_fraction=0.3),
        )
        v = validate_sram_cache(XEON_L3, constraint_sweep=sweep)
        assert v.mean_abs_error() < 0.8


class TestTargets:
    def test_ddr3_target_is_paper_table2(self):
        assert DDR3_TARGET.t_rc == pytest.approx(52.5e-9)
        assert DDR3_TARGET.e_activate == pytest.approx(3.1e-9)
        assert DDR3_TARGET.area_efficiency == pytest.approx(0.56)

    def test_paper_errors_encoded(self):
        assert DDR3_TARGET.PAPER_ERRORS["e_write"] == pytest.approx(-0.33)

    def test_percent_error(self):
        assert percent_error(1.1, 1.0) == pytest.approx(0.1)
        assert percent_error(0.9, 1.0) == pytest.approx(-0.1)

    def test_percent_error_zero_target_met_exactly(self):
        assert percent_error(0.0, 0.0) == 0.0

    def test_percent_error_zero_target_missed_raises_value_error(self):
        """ValueError, not ZeroDivisionError: the CLI's clean-exit path
        catches ValueError and reports the message at exit code 2."""
        with pytest.raises(ValueError, match="zero target"):
            percent_error(1.0, 0.0)


class TestCrossNodeTrends:
    """Commodity DRAM across nodes: the trends real parts exhibit."""

    @pytest.fixture(scope="class")
    def chips(self):
        from repro.array.mainmem import MainMemorySpec
        from repro.core.cacti import solve_main_memory

        return {
            node: solve_main_memory(
                MainMemorySpec(capacity_bits=2**30), node_nm=node
            )
            for node in (90.0, 78.0, 65.0)
        }

    def test_trc_roughly_flat(self, chips):
        """tRC barely improves with scaling (restore-dominated)."""
        values = [c.timing.t_rc for c in chips.values()]
        assert max(values) / min(values) < 1.4

    def test_energy_improves_with_scaling(self, chips):
        """Lower core VDD at newer nodes cuts activate energy."""
        assert (
            chips[65.0].energies.e_activate
            < chips[90.0].energies.e_activate
        )

    def test_density_improves_with_scaling(self, chips):
        assert chips[65.0].metrics.area < chips[90.0].metrics.area
