"""Per-access energy breakdown reporting."""

from __future__ import annotations

from dataclasses import dataclass

from repro.array.organization import ArrayMetrics


@dataclass(frozen=True)
class EnergyBreakdown:
    """Component energies of one read access (J)."""

    activate: float  #: decode + wordline + sensing (row open)
    read_column: float  #: column mux + data H-tree out
    precharge: float  #: bitline restore
    total_read: float
    total_write: float

    def report(self) -> str:
        rows = [
            ("row activate + sense", self.activate),
            ("column path + data out", self.read_column),
            ("precharge/restore", self.precharge),
            ("total read", self.total_read),
            ("total write", self.total_write),
        ]
        return "\n".join(
            f"{name:<28}{e * 1e12:>9.2f} pJ" for name, e in rows
        )


def energy_breakdown(metrics: ArrayMetrics) -> EnergyBreakdown:
    return EnergyBreakdown(
        activate=metrics.e_activate,
        read_column=metrics.e_read_column,
        precharge=metrics.e_precharge,
        total_read=metrics.e_read_access,
        total_write=metrics.e_write_access,
    )


def dynamic_power(metrics: ArrayMetrics, access_rate: float) -> float:
    """Average dynamic power at ``access_rate`` accesses per second (W)."""
    return metrics.e_read_access * access_rate
