#!/usr/bin/env python3
"""What fits in a 6.2 mm^2 stacked cache bank?

The LLC study fixes the area available per stacked L3 bank to 6.2 mm^2
(1/8th of the core die).  This example inverts the paper's question: for
each memory technology, sweep capacities and find the largest bank that
fits the budget, then report its latency, energy, leakage, and refresh
cost -- the capacity-vs-speed tradeoff that makes COMM-DRAM attractive for
stacking.

Run:  python examples/stacked_cache_explorer.py
"""

from repro import CellTech, MemorySpec, solve
from repro.core.config import DENSITY_OPTIMIZED
from repro.core.optimizer import NoFeasibleSolution

#: Capacities that do not divide into whole 12-way sets are skipped.

BANK_BUDGET_MM2 = 6.2
NBANKS = 8
CANDIDATES_MB = (3, 6, 9, 12, 16, 24, 32, 48)


def largest_fitting(cell_tech: CellTech):
    best = None
    for per_bank_mb in CANDIDATES_MB:
        capacity = per_bank_mb * NBANKS << 20
        try:
            solution = solve(
                MemorySpec(
                    capacity_bytes=capacity,
                    block_bytes=64,
                    associativity=12,
                    nbanks=NBANKS,
                    node_nm=32.0,
                    cell_tech=cell_tech,
                    sleep_transistors=cell_tech is CellTech.SRAM,
                ),
                DENSITY_OPTIMIZED,
            )
        except (NoFeasibleSolution, ValueError):
            continue
        if solution.area_mm2 / NBANKS <= BANK_BUDGET_MM2:
            best = solution
    return best


def main() -> None:
    print(f"Largest 12-way cache fitting {BANK_BUDGET_MM2} mm^2 per bank "
          f"({NBANKS} banks, 32 nm):\n")
    header = (f"{'technology':<12}{'capacity':>10}{'acc ns':>8}"
              f"{'E_rd nJ':>9}{'leak W':>8}{'refresh W':>10}"
              f"{'mm2/bank':>9}")
    print(header)
    results = {}
    for cell_tech in (CellTech.SRAM, CellTech.LP_DRAM, CellTech.COMM_DRAM):
        s = largest_fitting(cell_tech)
        results[cell_tech] = s
        print(
            f"{cell_tech.value:<12}"
            f"{s.spec.capacity_bytes >> 20:>8} MB"
            f"{s.access_time_ns:>8.2f}"
            f"{s.e_read_nj:>9.3f}"
            f"{s.p_leakage:>8.3f}"
            f"{s.p_refresh:>10.4f}"
            f"{s.area_mm2 / NBANKS:>9.2f}"
        )

    sram = results[CellTech.SRAM]
    comm = results[CellTech.COMM_DRAM]
    ratio = comm.spec.capacity_bytes / sram.spec.capacity_bytes
    print(f"\nCOMM-DRAM stacks {ratio:.0f}x the SRAM capacity in the same "
          f"footprint, at {comm.access_time / sram.access_time:.1f}x the "
          f"access time and {sram.p_leakage / max(comm.p_leakage, 1e-6):.0f}x "
          f"less leakage -- the paper's core tradeoff.")


if __name__ == "__main__":
    main()
