"""Row decoders: predecoder blocks plus pitch-matched wordline drivers.

Follows the CACTI/Amrutur-Horowitz structure: address bits are grouped into
3-bit predecode blocks (NAND3 -> 8 one-hot lines); predecoded lines run
along the subarray edge to per-row gates (a NAND combining one line from
each block) whose output feeds the wordline driver chain.  All chains are
sized by logical effort; wordline drivers are folded to the wordline pitch
(the memory-cell height), which is where SRAM and DRAM decoders diverge in
area.

DRAM wordlines swing to the boosted VPP; the energy accounting charges the
wordline swing at VPP with a charge-pump overhead factor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuits.drivers import ChainMetrics, WireLoad, build_chain
from repro.tech.devices import DeviceParams

#: Address bits handled per predecode block.
_PREDEC_BITS = 3

#: Energy overhead of generating boosted VPP with an on-die charge pump;
#: pumps deliver charge at roughly 50-70 % efficiency.
CHARGE_PUMP_OVERHEAD = 1.6


@dataclass(frozen=True)
class WordlineLoad:
    """Electrical load of one wordline across a subarray."""

    resistance: float  #: total wordline resistance (ohm)
    capacitance: float  #: total wordline capacitance incl. gates (F)
    pitch: float  #: wordline pitch = memory cell height (m)
    voltage: float  #: swing (VDD, or VPP for DRAM)


@dataclass(frozen=True)
class DecoderMetrics:
    """Delay/energy/leakage/area of a complete row-decode path."""

    delay: float  #: address-valid to wordline-high (s)
    energy: float  #: dynamic energy per access (J)
    leakage: float  #: static leakage of the whole decoder (W)
    area: float  #: layout area (m^2)
    wordline_delay: float  #: portion spent on the wordline driver + RC (s)

    def __add__(self, other: "DecoderMetrics") -> "DecoderMetrics":
        return DecoderMetrics(
            delay=max(self.delay, other.delay),
            energy=self.energy + other.energy,
            leakage=self.leakage + other.leakage,
            area=self.area + other.area,
            wordline_delay=max(self.wordline_delay, other.wordline_delay),
        )


def design_decoder(
    device: DeviceParams,
    feature_size: float,
    num_rows: int,
    wordline: WordlineLoad,
    predec_wire: WireLoad,
) -> DecoderMetrics:
    """Design the row decoder for a subarray of ``num_rows``.

    ``predec_wire`` is the RC of one predecoded line running the height of
    the subarray (it must reach every row gate).
    """
    if num_rows < 2:
        # Degenerate single-row structure: just the wordline driver.
        wl = _wordline_chain(device, feature_size, wordline)
        return DecoderMetrics(
            delay=wl.delay,
            energy=wl.energy,
            leakage=wl.leakage,
            area=wl.area,
            wordline_delay=wl.delay,
        )

    addr_bits = max(1, math.ceil(math.log2(num_rows)))
    num_blocks = max(1, math.ceil(addr_bits / _PREDEC_BITS))
    lines_per_block = 2 ** min(_PREDEC_BITS, addr_bits)

    # Wordline driver chain: NAND row gate combining the predecoded lines,
    # then inverters up to the wordline load, folded into the wordline pitch.
    wl_chain = _wordline_chain(
        device, feature_size, wordline, first_gate_inputs=num_blocks
    )

    # Each predecoded line loads: the wire down the subarray edge plus the
    # row-gate input cap of every row it can select.
    rows_per_line = num_rows / lines_per_block
    predec_load = wl_chain.c_in * rows_per_line
    predec_chain = build_chain(
        device,
        feature_size,
        c_load=predec_load,
        wire=predec_wire,
        first_gate_inputs=_PREDEC_BITS,
    )

    delay = predec_chain.delay + wl_chain.delay

    # Per access: one line per predecode block rises and one falls (2 line
    # swings), one row gate + wordline driver fires.
    energy = 2.0 * num_blocks * predec_chain.energy + wl_chain.energy

    # Leakage: every row has a gate + driver; each block has 2^b line drivers.
    leakage = (
        num_rows * wl_chain.leakage
        + num_blocks * lines_per_block * predec_chain.leakage
    )
    area = (
        num_rows * wl_chain.area
        + num_blocks * lines_per_block * predec_chain.area
    )
    return DecoderMetrics(
        delay=delay,
        energy=energy,
        leakage=leakage,
        area=area,
        wordline_delay=wl_chain.delay,
    )


def _wordline_chain(
    device: DeviceParams,
    feature_size: float,
    wordline: WordlineLoad,
    first_gate_inputs: int = 1,
) -> ChainMetrics:
    boosted = wordline.voltage > device.vdd
    chain = build_chain(
        device,
        feature_size,
        c_load=0.0,
        wire=WireLoad(wordline.resistance, wordline.capacitance),
        first_gate_inputs=first_gate_inputs,
        pitch=wordline.pitch,
        voltage_swing=wordline.voltage,
    )
    if not boosted:
        return chain
    # Boosted wordlines pay the charge-pump overhead on the swung energy.
    return ChainMetrics(
        delay=chain.delay,
        ramp_out=chain.ramp_out,
        energy=chain.energy * CHARGE_PUMP_OVERHEAD,
        leakage=chain.leakage,
        area=chain.area * 1.2,  # level shifter per driver
        num_stages=chain.num_stages,
        c_in=chain.c_in,
    )
