"""Unit tests for the wire models."""

import pytest
from hypothesis import given, strategies as st

from repro.tech.wires import global_wire, local_wire, semi_global_wire


class TestGeometry:
    @pytest.mark.parametrize("node", [90, 65, 45, 32])
    def test_pitch_hierarchy(self, node):
        local = local_wire(node)
        semi = semi_global_wire(node)
        glob = global_wire(node)
        assert local.pitch < semi.pitch < glob.pitch
        assert semi.pitch == pytest.approx(4 * node * 1e-9)
        assert glob.pitch == pytest.approx(8 * node * 1e-9)

    def test_width_is_half_pitch(self):
        w = semi_global_wire(32)
        assert w.width == pytest.approx(w.pitch / 2)

    def test_thickness_follows_aspect_ratio(self):
        w = global_wire(45)
        assert w.thickness == pytest.approx(w.aspect_ratio * w.width)


class TestElectricals:
    @pytest.mark.parametrize("node", [90, 65, 45, 32])
    def test_resistance_hierarchy(self, node):
        """Narrower wires are more resistive per unit length."""
        assert (
            local_wire(node).r_per_m
            > semi_global_wire(node).r_per_m
            > global_wire(node).r_per_m
        )

    def test_resistance_worsens_with_scaling(self):
        """Size effects + smaller cross-sections: R/m rises each node."""
        for maker in (semi_global_wire, global_wire):
            rs = [maker(n).r_per_m for n in (90, 65, 45, 32)]
            assert rs == sorted(rs)

    def test_capacitance_roughly_constant(self):
        """C/m stays in the 0.1-0.3 fF/um band across nodes."""
        for node in (90, 65, 45, 32):
            c = semi_global_wire(node).c_per_m
            assert 0.1e-9 < c < 0.3e-9

    def test_tungsten_more_resistive_than_copper(self):
        cu = local_wire(32)
        w = local_wire(32, tungsten=True)
        assert w.r_per_m > 2.5 * cu.r_per_m
        assert w.c_per_m == pytest.approx(cu.c_per_m)

    def test_interpolated_node(self):
        r78 = semi_global_wire(78).r_per_m
        assert (
            semi_global_wire(90).r_per_m < r78 < semi_global_wire(65).r_per_m
        )

    def test_node_out_of_range_raises(self):
        with pytest.raises(ValueError, match="outside modeled range"):
            semi_global_wire(120)


class TestDelay:
    def test_elmore_scales_quadratically(self):
        w = global_wire(32)
        assert w.elmore_delay(2e-3) == pytest.approx(4 * w.elmore_delay(1e-3))

    @given(st.floats(min_value=1e-6, max_value=1e-2))
    def test_elmore_positive(self, length):
        assert semi_global_wire(45).elmore_delay(length) > 0

    def test_global_wire_faster_than_semi_global(self):
        """Fatter wires have lower RC per mm^2."""
        assert (
            global_wire(32).rc_per_m2() < semi_global_wire(32).rc_per_m2()
        )
