"""Trace-file support: persist and replay workload event streams.

The paper's methodology is trace-driven (COTSon captures instruction
sequences that the timing simulator replays).  This module provides the
equivalent plumbing for this reproduction: a compact text format for the
simulator's event protocol, so reference streams can be captured once
(from the synthetic generators or any external tool) and replayed
deterministically across configurations.

Format: one event per line.

* ``S <instructions> <cycles> <address-hex> <R|W>`` -- a compute+memory step
* ``C <instructions> <cycles>`` -- compute only
* ``M <address-hex> <R|W>`` -- memory reference only
* ``B`` -- barrier
* ``L <lock-id> <hold-cycles>`` -- critical section
* lines starting with ``#`` are comments

Multi-threaded traces store one file per thread; :func:`save_trace` and
:func:`load_trace` handle single streams, :func:`save_traces` /
:func:`load_traces` a per-thread directory layout.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator

from repro.sim.core import Event


class TraceFormatError(ValueError):
    """Raised for malformed trace lines."""


def _format_event(event: Event) -> str:
    kind = event[0]
    if kind == "step":
        _, n, cycles, address, is_write = event
        return f"S {n} {cycles!r} {address:x} {'W' if is_write else 'R'}"
    if kind == "compute":
        _, n, cycles = event
        return f"C {n} {cycles!r}"
    if kind == "mem":
        _, address, is_write = event
        return f"M {address:x} {'W' if is_write else 'R'}"
    if kind == "barrier":
        return "B"
    if kind == "lock":
        _, lock_id, hold = event
        return f"L {lock_id} {hold!r}"
    raise TraceFormatError(f"cannot serialize event kind {kind!r}")


def _parse_line(line: str, lineno: int) -> Event | None:
    line = line.strip()
    if not line or line.startswith("#"):
        return None
    fields = line.split()
    try:
        kind = fields[0]
        if kind == "S":
            return ("step", int(fields[1]), float(fields[2]),
                    int(fields[3], 16), fields[4] == "W")
        if kind == "C":
            return ("compute", int(fields[1]), float(fields[2]))
        if kind == "M":
            return ("mem", int(fields[1], 16), fields[2] == "W")
        if kind == "B":
            return ("barrier",)
        if kind == "L":
            return ("lock", int(fields[1]), float(fields[2]))
    except (IndexError, ValueError) as exc:
        raise TraceFormatError(f"line {lineno}: {line!r}: {exc}") from exc
    raise TraceFormatError(f"line {lineno}: unknown record {kind!r}")


def save_trace(events: Iterable[Event], path: str | Path) -> int:
    """Write one thread's event stream; returns the event count."""
    path = Path(path)
    count = 0
    with path.open("w") as fh:
        fh.write("# repro trace v1\n")
        for event in events:
            fh.write(_format_event(event) + "\n")
            count += 1
    return count


def load_trace(path: str | Path) -> Iterator[Event]:
    """Lazily replay one thread's event stream."""
    path = Path(path)
    with path.open() as fh:
        for lineno, line in enumerate(fh, start=1):
            event = _parse_line(line, lineno)
            if event is not None:
                yield event


def save_traces(
    streams: list[Iterable[Event]], directory: str | Path
) -> list[int]:
    """Write one file per thread under ``directory`` (thread_NN.trace)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    return [
        save_trace(stream, directory / f"thread_{i:02d}.trace")
        for i, stream in enumerate(streams)
    ]


def load_traces(directory: str | Path) -> list[Iterator[Event]]:
    """Load every per-thread trace in ``directory``, in thread order."""
    directory = Path(directory)
    paths = sorted(directory.glob("thread_*.trace"))
    if not paths:
        raise FileNotFoundError(f"no thread_*.trace files in {directory}")
    return [load_trace(p) for p in paths]
