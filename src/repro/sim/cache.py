"""Set-associative cache model with MESI line states.

A functional cache with LRU replacement, used for every level of the
simulated hierarchy.  Lines carry MESI states so the coherence protocol in
:mod:`repro.sim.coherence` can track sharing across the private L2s.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class MesiState(Enum):
    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    # INVALID lines are simply absent from the cache.


@dataclass
class Line:
    tag: int
    state: MesiState
    last_use: int


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache."""

    capacity_bytes: int
    block_bytes: int
    associativity: int
    access_cycles: int  #: hit latency contribution (CPU cycles)
    cycle_time: int = 1  #: issue pitch (CPU cycles) for bank occupancy
    nbanks: int = 1

    def __post_init__(self) -> None:
        if self.capacity_bytes % (self.block_bytes * self.associativity):
            raise ValueError("capacity must divide into full sets")

    @property
    def num_sets(self) -> int:
        return self.capacity_bytes // (self.block_bytes * self.associativity)


class Cache:
    """One set-associative LRU cache instance."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self._sets: list[dict[int, Line]] = [
            {} for _ in range(config.num_sets)
        ]
        self._tick = 0
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ #

    def _locate(self, address: int) -> tuple[dict[int, Line], int]:
        block = address // self.config.block_bytes
        index = block % self.config.num_sets
        tag = block // self.config.num_sets
        return self._sets[index], tag

    def lookup(self, address: int) -> Line | None:
        """Probe without updating recency (for coherence snoops)."""
        ways, tag = self._locate(address)
        return ways.get(tag)

    def access(self, address: int, is_write: bool) -> Line | None:
        """Probe and update recency; returns the line on a hit else None.

        A write hit on a SHARED line does *not* silently upgrade -- the
        coherence layer must invalidate other sharers first and then call
        :meth:`set_state`.
        """
        self._tick += 1
        ways, tag = self._locate(address)
        line = ways.get(tag)
        if line is None:
            self.misses += 1
            return None
        self.hits += 1
        line.last_use = self._tick
        if is_write and line.state is MesiState.EXCLUSIVE:
            line.state = MesiState.MODIFIED
        return line

    def fill(self, address: int, state: MesiState) -> tuple[int, bool] | None:
        """Install a line; returns (victim_address, was_dirty) if one was
        evicted, else None."""
        self._tick += 1
        ways, tag = self._locate(address)
        victim: tuple[int, bool] | None = None
        if tag not in ways and len(ways) >= self.config.associativity:
            lru_tag = min(ways, key=lambda t: ways[t].last_use)
            old = ways.pop(lru_tag)
            victim = (
                self._rebuild_address(address, lru_tag),
                old.state is MesiState.MODIFIED,
            )
        ways[tag] = Line(tag=tag, state=state, last_use=self._tick)
        return victim

    def invalidate(self, address: int) -> bool:
        """Drop a line (coherence); returns True if it was dirty."""
        ways, tag = self._locate(address)
        line = ways.pop(tag, None)
        return line is not None and line.state is MesiState.MODIFIED

    def set_state(self, address: int, state: MesiState) -> None:
        line = self.lookup(address)
        if line is not None:
            line.state = state

    def _rebuild_address(self, probe_address: int, victim_tag: int) -> int:
        block = probe_address // self.config.block_bytes
        index = block % self.config.num_sets
        victim_block = victim_tag * self.config.num_sets + index
        return victim_block * self.config.block_bytes

    # ------------------------------------------------------------------ #

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def occupancy(self) -> int:
        """Number of resident lines (for capacity tests)."""
        return sum(len(ways) for ways in self._sets)
