"""Unit tests for the tracing spans and their exports."""

import json

from repro.obs.trace import Tracer


def make_nested_trace() -> Tracer:
    t = Tracer()
    with t.span("solve", capacity=64):
        with t.span("prefilter"):
            pass
        with t.span("build", candidates=3):
            with t.span("chunk"):
                pass
    return t


class TestNesting:
    def test_parent_child_links(self):
        t = make_nested_trace()
        by_name = {s.name: s for s in t.spans}
        assert by_name["solve"].parent is None
        assert by_name["prefilter"].parent == by_name["solve"].id
        assert by_name["build"].parent == by_name["solve"].id
        assert by_name["chunk"].parent == by_name["build"].id

    def test_depths(self):
        t = make_nested_trace()
        depths = {s.name: s.depth for s in t.spans}
        assert depths == {"solve": 0, "prefilter": 1, "build": 1, "chunk": 2}

    def test_time_containment(self):
        """Every child span lies within its parent's interval."""
        t = make_nested_trace()
        by_id = {s.id: s for s in t.spans}
        for s in t.spans:
            if s.parent is None:
                continue
            parent = by_id[s.parent]
            assert s.start_s >= parent.start_s
            assert (
                s.start_s + s.duration_s
                <= parent.start_s + parent.duration_s + 1e-9
            )

    def test_duration_finalized_on_exception(self):
        t = Tracer()
        try:
            with t.span("doomed"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert len(t.spans) == 1
        assert t.spans[0].duration_s >= 0.0

    def test_attrs_mutable_while_open(self):
        t = Tracer()
        with t.span("solve") as span:
            span.attrs["result"] = "hit"
        assert t.spans[0].attrs == {"result": "hit"}


class TestExport:
    def test_to_dicts_sorted_by_start(self):
        t = make_nested_trace()
        dicts = t.to_dicts()
        starts = [d["start_s"] for d in dicts]
        assert starts == sorted(starts)
        assert dicts[0]["name"] == "solve"

    def test_chrome_trace_shape(self):
        t = make_nested_trace()
        doc = t.chrome_trace()
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert len(events) == 4
        for e in events:
            assert e["ph"] == "X"
            assert e["cat"] == "repro"
            assert e["ts"] >= 0.0 and e["dur"] >= 0.0
            assert e["pid"] == t.pid
        args = {e["name"]: e["args"] for e in events}
        assert args["solve"] == {"capacity": 64}

    def test_chrome_trace_round_trips_through_json(self, tmp_path):
        t = make_nested_trace()
        path = tmp_path / "trace.json"
        t.write_chrome(path)
        doc = json.loads(path.read_text())
        assert {e["name"] for e in doc["traceEvents"]} == {
            "solve", "prefilter", "build", "chunk",
        }

    def test_write_json_flat_spans(self, tmp_path):
        t = make_nested_trace()
        path = tmp_path / "spans.json"
        t.write_json(path)
        dicts = json.loads(path.read_text())
        assert [d["name"] for d in dicts] == [
            "solve", "prefilter", "build", "chunk",
        ]


class TestWorkerStitching:
    def test_absorb_rebases_onto_parent_timeline(self):
        parent = Tracer()
        worker = Tracer()
        # Pretend the worker's process started 10 wall-clock seconds
        # after the parent's.
        worker.epoch_wall = parent.epoch_wall + 10.0
        worker.pid = parent.pid + 1
        with worker.span("chunk"):
            pass
        with parent.span("build"):
            pass
        worker_start = worker.spans[0].start_s
        parent.absorb_payload(worker.export_payload())
        stitched = [s for s in parent.spans if s.name == "chunk"]
        assert len(stitched) == 1
        assert stitched[0].start_s == worker_start + 10.0
        # The worker's pid survives so it renders as its own track.
        assert stitched[0].pid == parent.pid + 1

    def test_absorb_renumbers_ids_without_collisions(self):
        parent = Tracer()
        with parent.span("a"):
            pass
        worker = Tracer()
        with worker.span("outer"):
            with worker.span("inner"):
                pass
        parent.absorb_payload(worker.export_payload())
        ids = [s.id for s in parent.spans]
        assert len(ids) == len(set(ids))
        by_name = {s.name: s for s in parent.spans}
        assert by_name["inner"].parent == by_name["outer"].id

    def test_absorb_none_is_a_noop(self):
        parent = Tracer()
        parent.absorb_payload(None)
        parent.absorb_payload({})
        assert len(parent) == 0

    def test_export_payload_is_plain_data(self):
        t = make_nested_trace()
        payload = t.export_payload()
        json.dumps(payload)  # picklable and JSON-safe: no live objects
        assert payload["pid"] == t.pid
        assert len(payload["spans"]) == 4
