"""repro.obs: zero-dependency observability for the solve pipeline.

One :class:`Obs` object bundles a :class:`~repro.obs.trace.Tracer`
(nested wall-time spans, exportable as JSON and Chrome trace-event
files) with a :class:`~repro.obs.metrics.MetricsRegistry` (named
counters / gauges / histograms with a JSON ``snapshot()``).  Every
pipeline entry point -- ``optimize``, ``solve``, ``solve_batch``,
``solve_main_memory``, ``run_study``, ``sensitivity.sweep``, and the
CLI via ``--trace`` / ``--metrics`` -- accepts an optional ``obs``
argument; ``None`` (the default) keeps every hot path free of clock
reads.

The determinism contract is absolute: observability reads clocks and
counts events around existing work, and never changes a solved number.
The golden-equivalence suite asserts bit-identical metrics with tracing
on and off at every job count.

Worker processes record spans and metrics into their own ``Obs`` and
ship ``export_payload()`` home inside the stats payload dicts the
parallel engine already returns; the parent stitches them into its
trace with the worker's pid at the correct time offset (the same
ship-counters-home pattern as ``SweepStats.absorb_worker``).
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Obs",
    "Span",
    "Tracer",
    "maybe_span",
    "phase",
]


class Obs:
    """A tracer and a metrics registry, threaded through one run."""

    def __init__(
        self,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    # Thin delegates so call sites stay one line.

    def span(self, name: str, **attrs):
        return self.tracer.span(name, **attrs)

    def inc(self, name: str, n: int | float = 1) -> None:
        self.metrics.counter(name).inc(n)

    def observe(self, name: str, value: float) -> None:
        self.metrics.histogram(name).observe(value)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name).set(value)

    # ------------------------------------------------------------------ #
    # Worker shipping (see module docstring)

    def export_payload(self) -> dict:
        """Picklable trace + metrics snapshot for shipping to a parent."""
        return {
            "trace": self.tracer.export_payload(),
            "metrics": self.metrics.snapshot(),
        }

    def absorb_worker(self, payload: dict | None) -> None:
        """Stitch a worker's ``export_payload()`` into this Obs."""
        if not payload:
            return
        self.tracer.absorb_payload(payload.get("trace"))
        self.metrics.absorb(payload.get("metrics"))


@contextmanager
def maybe_span(obs: Obs | None, name: str, **attrs):
    """A tracer span when ``obs`` is given; a free no-op otherwise."""
    if obs is None:
        yield None
    else:
        with obs.span(name, **attrs) as span:
            yield span


@contextmanager
def phase(name: str, obs: Obs | None = None, stats=None, **attrs):
    """Time one pipeline phase into every sink that wants it.

    One wall-clock measurement feeds the tracer span, a
    ``phase.<name>_s`` latency histogram, and the ``SweepStats`` phase
    timer -- ``SweepStats.phase_times`` stays populated as a thin view
    of the same numbers the trace records.  With neither sink present
    the clock is never read.
    """
    if obs is None and stats is None:
        yield None
        return
    if obs is not None:
        with obs.span(name, **attrs) as span:
            try:
                yield span
            finally:
                # duration_s is only final once the span closes; read
                # the clock against the span's own start instead of
                # timing twice.
                seconds = (
                    time.perf_counter() - obs.tracer._epoch - span.start_s
                )
                obs.observe(f"phase.{name}_s", seconds)
                if stats is not None:
                    stats.add_phase_time(name, seconds)
    else:
        t0 = time.perf_counter()
        try:
            yield None
        finally:
            stats.add_phase_time(name, time.perf_counter() - t0)
