"""The :class:`KVStore` protocol: a bounded, versioned record store.

Every persistence layer in the pipeline -- the solve cache, the
cachedb consult path, worker-local caches -- ultimately needs the same
small contract: get/put JSON records by string key, batch writes into
explicit flushes, survive concurrent writers, stamp records with a
model version so stale numbers are never served, and tombstone corrupt
records so they are neither re-parsed nor re-persisted.

:class:`KVStore` is that contract.  Two backends implement it:

* :class:`~repro.store.jsonfile.JsonFileStore` -- the original single
  JSON file, rewritten whole through an atomic replace.  Bit-compatible
  with every cache file written before the store refactor; the right
  choice for small caches and human-inspectable artifacts.
* :class:`~repro.store.sqlite.SqliteStore` -- a WAL-mode sqlite
  database with per-record version stamps, batched O(dirty) flushes,
  optional key-prefix sharding, and a bounded record count enforced by
  least-recently-used eviction.  The right choice for heavy concurrent
  traffic and stores too large to rewrite whole.

The shared machinery lives here: dirty tracking, deferred flushes
(context-manager nesting collapses solve/batch boundaries to one write),
tombstone bookkeeping, and the ``stats()`` shape every backend reports.

Determinism contract: a store changes *when* a record is read from or
written to disk, never *what* the record says.  Records are JSON
objects whose floats round-trip bit-exactly (shortest-repr encoding),
so a record served from either backend is field-for-field identical to
the one that was put.
"""

from __future__ import annotations

import abc
import os
from pathlib import Path
from typing import Callable, Iterator

#: Record validation hook: ``validate(record) -> bool``.  A record that
#: fails validation is structurally corrupt -- tombstoned, counted, and
#: never served.
Validator = Callable[[dict], bool]


class KVStore(abc.ABC):
    """Abstract persistent key-value store of JSON-object records.

    Subclasses implement the storage engine (:meth:`get`, :meth:`put`,
    :meth:`scan`, :meth:`refresh`, :meth:`_save`, :meth:`__len__`);
    this base class owns the write-batching protocol shared by every
    backend:

    * :meth:`put` and :meth:`tombstone` only mark the store dirty;
    * :meth:`flush` performs the backend save (a no-op when clean);
    * entering the store as a context manager defers nested flushes to
      the outermost exit, so a thousand-record sweep costs O(1) saves.

    ``version`` stamps every record (or file) written; records at other
    versions are never served.  ``older_versions`` names this build's
    ancestors -- safe to drop/rewrite; anything else is foreign (likely
    a newer build's) and must be preserved.  ``validate`` screens
    structurally corrupt records into tombstones.
    """

    #: Short backend name reported by :meth:`stats` and ``repro cache info``.
    BACKEND = "abstract"

    def __init__(
        self,
        *,
        version: str,
        older_versions: tuple[str, ...] = (),
        validate: Validator | None = None,
    ):
        self.version = version
        self.older_versions = tuple(older_versions)
        self.validate = validate
        #: Cumulative counters (monotonic for the life of the instance).
        self.evictions = 0
        self.flush_writes = 0
        self._tombstoned: set[str] = set()
        self._dirty = False
        self._defer_depth = 0

    # ------------------------------------------------------------------ #
    # Engine interface (backend-specific)

    @property
    @abc.abstractmethod
    def path(self) -> Path:
        """Primary on-disk location of the store."""

    @property
    @abc.abstractmethod
    def url(self) -> str:
        """Round-trippable store spec: ``open_store(store.url)`` opens
        the same store with the same options (eviction bound, sharding),
        in this process or a worker."""

    @abc.abstractmethod
    def get(self, key: str) -> dict | None:
        """The record at ``key``, or None (missing, tombstoned, or
        version-mismatched)."""

    @abc.abstractmethod
    def put(self, key: str, record: dict) -> None:
        """Stage ``record`` at ``key`` (persisted at the next flush)."""

    @abc.abstractmethod
    def scan(self) -> Iterator[tuple[str, dict]]:
        """Iterate every live ``(key, record)`` at the current version,
        including staged-but-unflushed ones."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Live record count (current version, not tombstoned)."""

    @abc.abstractmethod
    def refresh(self) -> None:
        """Pick up records concurrently written by other processes."""

    @abc.abstractmethod
    def _save(self) -> None:
        """Persist staged mutations (called by :meth:`flush` when dirty)."""

    # ------------------------------------------------------------------ #
    # Shared write-batching protocol

    def flush(self) -> None:
        """Persist staged mutations (no-op when clean or deferred)."""
        if self._dirty and self._defer_depth == 0:
            self._save()
            self._dirty = False
            self.flush_writes += 1

    def __enter__(self) -> "KVStore":
        self._defer_depth += 1
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._defer_depth -= 1
        self.flush()

    def close(self) -> None:
        """Flush and release backend resources (idempotent)."""
        self.flush()

    # ------------------------------------------------------------------ #
    # Tombstones and stats

    def tombstone(self, key: str) -> None:
        """Mark ``key``'s record corrupt: dropped from memory and -- at
        the next flush -- from disk, counted, never served again."""
        if key in self._tombstoned:
            return
        self._tombstoned.add(key)
        self._dirty = True
        self._drop(key)

    def _drop(self, key: str) -> None:
        """Backend hook: remove ``key`` from any in-memory view."""

    @property
    def corrupt_records(self) -> int:
        """Distinct corrupt/truncated records tombstoned so far."""
        return len(self._tombstoned)

    def _screen_record(self, key: str, record) -> dict | None:
        """Validate one record, tombstoning it when corrupt."""
        if key in self._tombstoned:
            return None
        ok = isinstance(record, dict) and (
            self.validate is None or self.validate(record)
        )
        if not ok:
            self.tombstone(key)
            return None
        return record

    def bytes_on_disk(self) -> int:
        """Current on-disk footprint of the store (0 when unwritten)."""
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    def stats(self) -> dict:
        """Uniform backend stats: the ``store.*`` metric family."""
        return {
            "backend": self.BACKEND,
            "records": len(self),
            "corrupt_records": self.corrupt_records,
            "evictions": self.evictions,
            "flush_writes": self.flush_writes,
            "bytes_on_disk": self.bytes_on_disk(),
        }

    def gc(self) -> dict:
        """Reclaim space: purge tombstones and stale-version leftovers.

        Backends extend this; the base implementation only forces a
        flush (which already drops tombstoned records from disk).
        Returns a report dict of what was reclaimed.
        """
        before = self.bytes_on_disk()
        self.flush()
        return {
            "backend": self.BACKEND,
            "purged_tombstones": self.corrupt_records,
            "bytes_before": before,
            "bytes_after": self.bytes_on_disk(),
        }

    def info(self) -> dict:
        """Inspection report for ``repro cache info``."""
        report = {"path": str(self.path), "url": self.url,
                  "version": self.version}
        report.update(self.stats())
        return report
