#!/usr/bin/env python3
"""The stacked last-level-cache study (paper sections 3-4), end to end.

Runs a reduced version of the paper's architectural evaluation: four
representative NPB applications (one from each behaviour group) on the six
system configurations, with latencies and energies drawn from this
reproduction's own CACTI-D solves, then prints IPC, execution-cycle
breakdown, memory-hierarchy power, and normalized system energy-delay.

Run:  python examples/llc_study.py           (~2-4 minutes)
      python examples/llc_study.py --fast    (smaller runs, ~1 minute)
"""

import sys

from repro.study import CONFIG_NAMES, run_study
from repro.workloads.npb import BT_C, CG_C, FT_B, UA_C


def main() -> None:
    fast = "--fast" in sys.argv
    instructions = 25_000 if fast else 80_000
    profiles = (FT_B, BT_C, UA_C, CG_C)

    print("Solving the hierarchy with CACTI-D and simulating "
          f"{len(profiles)} apps x {len(CONFIG_NAMES)} configurations ...")
    study = run_study(
        profiles=profiles,
        source="cacti",
        instructions_per_thread=instructions,
    )

    print("\nIPC (paper Figure 4a):")
    print(f"{'app':<8}" + "".join(f"{c:>12}" for c in CONFIG_NAMES))
    for app in study.app_names:
        cells = "".join(
            f"{study.get(app, c).ipc:>12.2f}" for c in CONFIG_NAMES
        )
        print(f"{app:<8}{cells}")

    print("\nExecution cycles normalized to nol3 (paper Figure 4b):")
    print(f"{'app':<8}" + "".join(f"{c:>12}" for c in CONFIG_NAMES))
    for app in study.app_names:
        cells = "".join(
            f"{study.normalized_cycles(app, c):>12.2f}"
            for c in CONFIG_NAMES
        )
        print(f"{app:<8}{cells}")

    print("\nCycle breakdown for ft.B on cm_dram_c:")
    stats = study.get("ft.B", "cm_dram_c").stats
    for name, frac in stats.breakdown.normalized().items():
        print(f"  {name:<12}{frac:>7.1%}")

    print("\nMemory-hierarchy power (W) and normalized EDP "
          "(paper Figure 5):")
    print(f"{'app':<8}{'config':<12}{'hier W':>8}{'EDP':>7}")
    for app in study.app_names:
        for config in CONFIG_NAMES:
            r = study.get(app, config)
            print(f"{app:<8}{config:<12}{r.power.total:>8.2f}"
                  f"{study.normalized_energy_delay(app, config):>7.2f}")

    for config in ("cm_dram_ed", "cm_dram_c"):
        print(
            f"\n{config}: mean execution-time reduction "
            f"{study.mean_execution_reduction(config):.0%}, "
            f"mean EDP improvement "
            f"{study.mean_energy_delay_improvement(config):.0%}"
        )
    print("(paper, all 8 apps: 39%/43% execution time, 33%/40% EDP)")


if __name__ == "__main__":
    main()
